package storage

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates the I/O counters reported in the paper's experiments.
type Stats struct {
	// LogicalReads counts node accesses: every page request, hit or miss.
	// Fig. 5 reports this metric (per-query node accesses, no buffer).
	LogicalReads int64
	// PageReads counts physical reads, i.e. buffer misses. Together with
	// PageWrites this is the "page accesses" metric of Figs. 6-9 and
	// Tables II-III.
	PageReads int64
	// PageWrites counts physical page writes (tree materialization cost).
	PageWrites int64
	// DecodeHits counts ReadDecoded calls served from a page's attached
	// decoded representation — accesses that skipped re-parsing the page.
	// Purely a CPU-side metric: it never contributes to PageAccesses.
	DecodeHits int64
	// DecodeMisses counts ReadDecoded calls that found no decoded
	// representation attached (cold page, invalidated page, or decode
	// caching disabled) and had to re-parse the page bytes.
	DecodeMisses int64
}

// PageAccesses returns the combined physical I/O count.
func (s Stats) PageAccesses() int64 { return s.PageReads + s.PageWrites }

// Sub returns the difference s - o of two counter snapshots, used to
// attribute I/O to phases (MAT vs JOIN in Fig. 7).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LogicalReads: s.LogicalReads - o.LogicalReads,
		PageReads:    s.PageReads - o.PageReads,
		PageWrites:   s.PageWrites - o.PageWrites,
		DecodeHits:   s.DecodeHits - o.DecodeHits,
		DecodeMisses: s.DecodeMisses - o.DecodeMisses,
	}
}

// Add returns the sum of two counter snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		LogicalReads: s.LogicalReads + o.LogicalReads,
		PageReads:    s.PageReads + o.PageReads,
		PageWrites:   s.PageWrites + o.PageWrites,
		DecodeHits:   s.DecodeHits + o.DecodeHits,
		DecodeMisses: s.DecodeMisses + o.DecodeMisses,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("logical=%d reads=%d writes=%d decodehits=%d", s.LogicalReads, s.PageReads, s.PageWrites, s.DecodeHits)
}

// Buffer is an LRU page cache in front of a Disk. Capacity 0 disables
// caching entirely (every access is physical), which matches the
// buffer-less node-access experiments of Fig. 5.
//
// Writes are write-through: each Write costs one physical page write and
// installs the page in the cache, so materializing an R-tree costs exactly
// its page count in writes (Section III-C: "the I/O cost of tree
// construction is exactly the cost of writing the nodes of R'P to disk").
//
// Each cached page can carry one decoded representation (SetDecoded), a
// side slot that rides the page's LRU residency: it is dropped together
// with the page on eviction and cleared by any Write to the page, so a
// non-nil decoded value returned by ReadDecoded is always coherent with
// the page bytes. The slot is how rtree.Tree avoids re-parsing hot nodes
// on every buffer hit without perturbing a single I/O counter — the read
// path (LogicalReads, PageReads, LRU order) is byte-for-byte the one of
// Read.
type Buffer struct {
	disk     *Disk
	capacity int
	stats    Stats
	gen      uint64 // write generation: incremented by every Write

	// Intrusive LRU: a sentinel-anchored doubly-linked list of bufEntry
	// with a free list for recycled nodes, so steady-state page churn —
	// thousands of install/evict cycles per join on a paper-sized 2%
	// buffer — allocates nothing.
	head    bufEntry // sentinel: head.next = most recently used
	free    *bufEntry
	entries map[PageID]*bufEntry // page id -> live entry
	count   int

	decodeCaching bool // when false, ReadDecoded/SetDecoded ignore the slot

	// backend marks what the buffer fronts: BackendPaged for the ordinary
	// page cache, BackendFlat for the stats-only ledger of an
	// arena-resident tree (see backend.go). Forks inherit it.
	backend Backend

	// onEvict, when non-nil, observes every page leaving the cache
	// (capacity eviction, shrink, DropAll) together with its attached
	// decoded value. Diagnostics/test hook; it must not call back into the
	// buffer.
	onEvict func(id PageID, decoded any)
}

type bufEntry struct {
	id         PageID
	data       []byte
	decoded    any // decoded representation of data, nil when none attached
	prev, next *bufEntry
}

// NewBuffer creates a buffer over disk with room for capacity pages.
func NewBuffer(disk *Disk, capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	b := &Buffer{
		disk:          disk,
		capacity:      capacity,
		entries:       make(map[PageID]*bufEntry),
		decodeCaching: DecodeCacheDefault(),
	}
	b.head.prev, b.head.next = &b.head, &b.head
	return b
}

// unlink removes e from the LRU list.
func (b *Buffer) unlink(e *bufEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// linkFront inserts e as most recently used.
func (b *Buffer) linkFront(e *bufEntry) {
	e.prev = &b.head
	e.next = b.head.next
	e.next.prev = e
	b.head.next = e
}

// moveToFront marks e most recently used.
func (b *Buffer) moveToFront(e *bufEntry) {
	if b.head.next == e {
		return
	}
	b.unlink(e)
	b.linkFront(e)
}

// release returns an unlinked entry to the free list.
func (b *Buffer) release(e *bufEntry) {
	e.data = nil
	e.decoded = nil
	e.prev = nil
	e.next = b.free
	b.free = e
}

// Disk returns the underlying disk.
func (b *Buffer) Disk() *Disk { return b.disk }

// Fork returns a fresh, empty buffer over the same disk with the given
// capacity and zeroed counters. A Buffer is single-goroutine state (LRU
// list plus counters), so concurrent readers each Fork their own buffer
// instead of sharing one: Disk reads are safe concurrently as long as no
// page is allocated or written (see the Disk doc), which holds for the
// join phase of the CIJ algorithms — they only read the two input trees.
// Per-fork Stats then attribute I/O to each worker exactly, and summing
// them yields the total physical I/O of a parallel run.
//
// Decoded-page slots are per-buffer state like the LRU list, so each fork
// starts with an empty, private decoded cache — forks never share decoded
// nodes, which is what keeps parallel workers and per-request service
// views race-free without any locking. A fork inherits the decode-caching
// switch and the eviction hook: a hook installed on a dataset's base
// buffer observes evictions from every per-request view forked off it, so
// it must itself be safe for concurrent use (an atomic counter is the
// typical shape).
func (b *Buffer) Fork(capacity int) *Buffer {
	f := NewBuffer(b.disk, capacity)
	f.decodeCaching = b.decodeCaching
	f.onEvict = b.onEvict
	f.backend = b.backend
	return f
}

// Capacity returns the buffer capacity in pages.
func (b *Buffer) Capacity() int { return b.capacity }

// SetCapacity resizes the buffer, evicting least-recently-used pages if it
// shrinks.
func (b *Buffer) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	b.evictOverflow()
}

// Stats returns a snapshot of the I/O counters.
func (b *Buffer) Stats() Stats { return b.stats }

// ResetStats zeroes the I/O counters without touching cached pages.
func (b *Buffer) ResetStats() { b.stats = Stats{} }

// RestoreStats overwrites the counters with a previously captured
// snapshot. Structural bookkeeping (invariant checks, page counting) uses
// it to stay invisible in measured experiments.
func (b *Buffer) RestoreStats(s Stats) { b.stats = s }

// DropAll empties the cache (cold restart) without touching the counters.
// Decoded slots leave with their pages.
func (b *Buffer) DropAll() {
	for e := b.head.next; e != &b.head; {
		next := e.next
		if b.onEvict != nil {
			b.onEvict(e.id, e.decoded)
		}
		delete(b.entries, e.id)
		b.release(e)
		e = next
	}
	b.head.prev, b.head.next = &b.head, &b.head
	b.count = 0
}

// Read returns the contents of the page, through the cache. The returned
// slice is shared; callers must not modify it.
func (b *Buffer) Read(id PageID) []byte {
	b.stats.LogicalReads++
	if e, ok := b.entries[id]; ok {
		b.moveToFront(e)
		return e.data
	}
	b.stats.PageReads++
	data := b.disk.read(id)
	b.install(id, data)
	return data
}

// ReadDecoded is Read plus the page's decoded slot: it returns the page
// bytes and, when one is attached and decode caching is on, the decoded
// representation last stored with SetDecoded. The I/O accounting and LRU
// effect are exactly those of Read — the decoded value changes what the
// caller must re-parse, never what the buffer counts. A nil decoded
// result means the caller should decode the bytes (and may SetDecoded the
// result for the next access).
//
// resident reports whether the page was in the buffer BEFORE this read
// (a buffer hit). Callers use it as an install heuristic: decoding into a
// heap node is only worth it for pages that demonstrably get re-read, so
// the hot read path keeps first-touch decodes in scratch and installs on
// the second touch.
func (b *Buffer) ReadDecoded(id PageID) (data []byte, decoded any, resident bool) {
	b.stats.LogicalReads++
	if e, ok := b.entries[id]; ok {
		b.moveToFront(e)
		if e.decoded != nil && b.decodeCaching {
			b.stats.DecodeHits++
			return e.data, e.decoded, true
		}
		b.stats.DecodeMisses++
		return e.data, nil, true
	}
	b.stats.PageReads++
	b.stats.DecodeMisses++
	d := b.disk.read(id)
	b.install(id, d)
	return d, nil, false
}

// SetDecoded attaches a decoded representation to the page's buffer slot,
// to be returned by subsequent ReadDecoded calls while the page stays
// resident and unwritten. It is a no-op when the page is not resident
// (capacity-0 buffers never cache decodes) or decode caching is off.
// No counter is touched and the LRU order is left alone: attaching is
// bookkeeping on an access that was already counted.
func (b *Buffer) SetDecoded(id PageID, v any) {
	if !b.decodeCaching {
		return
	}
	if e, ok := b.entries[id]; ok {
		e.decoded = v
	}
}

// Decoded returns the decoded value currently attached to the page, if
// any, without touching counters or LRU order. Test/diagnostic accessor.
func (b *Buffer) Decoded(id PageID) (any, bool) {
	if e, ok := b.entries[id]; ok && e.decoded != nil {
		return e.decoded, true
	}
	return nil, false
}

// Generation returns the buffer's write generation: a counter incremented
// by every Write through this buffer. Decoded-node caches use it in tests
// to assert that mutation epochs were observed; page-level coherence
// itself is structural (Write clears the written page's decoded slot).
func (b *Buffer) Generation() uint64 { return b.gen }

// SetOnEvict installs a hook observing every page that leaves the cache
// (LRU eviction, capacity shrink, DropAll), along with the decoded value
// the page carried. Pass nil to remove it. The hook must not mutate the
// buffer. Buffers forked after the call inherit the hook (see Fork), so a
// hook that may run on several forks concurrently must be thread-safe.
func (b *Buffer) SetOnEvict(fn func(id PageID, decoded any)) { b.onEvict = fn }

// SetDecodeCaching switches the decoded-slot machinery on or off for this
// buffer. Off, ReadDecoded never returns a decoded value and SetDecoded
// is a no-op — every access re-parses, as before the cache existed. The
// I/O counters and LRU behavior are identical in both modes (the
// equivalence suite runs both ways to prove it); DecodeHits/DecodeMisses
// are the only counters that differ.
func (b *Buffer) SetDecodeCaching(on bool) {
	b.decodeCaching = on
	if !on {
		for e := b.head.next; e != &b.head; e = e.next {
			e.decoded = nil
		}
	}
}

// DecodeCaching reports whether decoded-slot caching is enabled.
func (b *Buffer) DecodeCaching() bool { return b.decodeCaching }

// Contains reports whether the page is currently cached (no counter
// impact). Used by tests.
func (b *Buffer) Contains(id PageID) bool {
	_, ok := b.entries[id]
	return ok
}

// Write stores data into the page (write-through) and caches it. The
// page's decoded slot is cleared — whatever representation was attached
// described the old bytes — and the write generation advances.
func (b *Buffer) Write(id PageID, data []byte) {
	b.stats.PageWrites++
	b.gen++
	b.disk.write(id, data)
	if e, ok := b.entries[id]; ok {
		e.data = b.disk.read(id)
		e.decoded = nil
		b.moveToFront(e)
		return
	}
	b.install(id, b.disk.read(id))
}

// Alloc allocates a fresh page on the underlying disk. Allocation itself
// is free; the subsequent Write pays the I/O.
func (b *Buffer) Alloc() PageID { return b.disk.Alloc() }

func (b *Buffer) install(id PageID, data []byte) {
	if b.capacity == 0 {
		return
	}
	e := b.free
	if e != nil {
		b.free = e.next
		e.next = nil
	} else {
		e = &bufEntry{}
	}
	e.id, e.data, e.decoded = id, data, nil
	b.linkFront(e)
	b.entries[id] = e
	b.count++
	b.evictOverflow()
}

func (b *Buffer) evictOverflow() {
	for b.count > b.capacity {
		back := b.head.prev
		if back == &b.head {
			return
		}
		b.unlink(back)
		delete(b.entries, back.id)
		b.count--
		if b.onEvict != nil {
			b.onEvict(back.id, back.decoded)
		}
		b.release(back)
	}
}

// decodeCacheDefault is the creation-time default for Buffer decode
// caching: on unless switched off. The equivalence suite flips it to run
// every backend with and without decoded-node caching; experiment code
// can flip it for ablations.
var decodeCacheDefault atomic.Bool

func init() { decodeCacheDefault.Store(true) }

// SetDecodeCacheDefault sets whether buffers created from now on cache
// decoded pages, returning the previous default. Existing buffers are
// unaffected; use Buffer.SetDecodeCaching for those.
func SetDecodeCacheDefault(on bool) (previous bool) {
	return decodeCacheDefault.Swap(on)
}

// DecodeCacheDefault reports the creation-time default for decode
// caching.
func DecodeCacheDefault() bool { return decodeCacheDefault.Load() }
