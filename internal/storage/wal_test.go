package storage

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func walAppendAll(t *testing.T, fs FS, path string, recs ...[]byte) {
	t.Helper()
	w, _, err := OpenWAL(fs, path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func walRecords(t *testing.T, fs FS, path string) *WALOpenResult {
	t.Helper()
	w, res, err := OpenWAL(fs, path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	w.Close()
	return res
}

func TestWALEmpty(t *testing.T) {
	fs := NewFaultFS()
	w, res, err := OpenWAL(fs, "wal")
	if err != nil {
		t.Fatalf("OpenWAL on absent file: %v", err)
	}
	defer w.Close()
	if len(res.Records) != 0 || res.TornTail || res.CorruptRecords != 0 || res.DroppedBytes != 0 {
		t.Fatalf("empty WAL scan = %+v, want all-zero", res)
	}
	if w.Size() != 0 {
		t.Fatalf("empty WAL size = %d", w.Size())
	}
}

func TestWALRoundtrip(t *testing.T) {
	fs := NewFaultFS()
	recs := [][]byte{[]byte("one"), []byte("two-two"), bytes.Repeat([]byte{0xAB}, 5000)}
	walAppendAll(t, fs, "wal", recs...)
	res := walRecords(t, fs, "wal")
	if len(res.Records) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range recs {
		if !bytes.Equal(res.Records[i], r) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if res.TornTail || res.CorruptRecords != 0 {
		t.Fatalf("clean WAL reported damage: %+v", res)
	}
}

// corruptAt flips one byte of the file at off.
func corruptAt(t *testing.T, fs FS, path string, off int64) {
	t.Helper()
	f, err := fs.OpenRW(path)
	if err != nil {
		t.Fatalf("OpenRW: %v", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func truncateTo(t *testing.T, fs FS, path string, size int64) {
	t.Helper()
	f, err := fs.OpenRW(path)
	if err != nil {
		t.Fatalf("OpenRW: %v", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
}

func fileSize(t *testing.T, fs FS, path string) int64 {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	return size
}

func TestWALTornTail(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"), []byte("beta"), []byte("gamma"))
	size := fileSize(t, fs, "wal")
	// Tear the final frame: drop its last 2 bytes.
	truncateTo(t, fs, "wal", size-2)

	res := walRecords(t, fs, "wal")
	if !res.TornTail {
		t.Fatalf("truncated final frame not reported as torn tail: %+v", res)
	}
	if len(res.Records) != 2 || string(res.Records[1]) != "beta" {
		t.Fatalf("torn-tail recovery kept %d records, want the 2 intact ones", len(res.Records))
	}
	if res.DroppedBytes == 0 {
		t.Fatalf("torn tail reported zero dropped bytes")
	}
	// The open truncated the tail; a new append must produce a clean log.
	walAppendAll(t, fs, "wal", []byte("delta"))
	res = walRecords(t, fs, "wal")
	if len(res.Records) != 3 || string(res.Records[2]) != "delta" || res.TornTail || res.CorruptRecords != 0 {
		t.Fatalf("append after torn-tail repair: %+v", res)
	}
}

func TestWALTornHeader(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"))
	// A crash right after writing 3 bytes of the next frame header.
	f, err := fs.OpenRW("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{9, 0, 0}, fileSize(t, fs, "wal")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res := walRecords(t, fs, "wal")
	if !res.TornTail || len(res.Records) != 1 {
		t.Fatalf("partial header: %+v, want torn tail after 1 record", res)
	}
}

func TestWALCorruptCRCMidLog(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"), []byte("beta"), []byte("gamma"))
	// Flip a payload byte of the middle record: frame 0 is 8+5 bytes, so
	// record two's payload begins at 13+8.
	corruptAt(t, fs, "wal", 13+8)

	res := walRecords(t, fs, "wal")
	if res.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", res.CorruptRecords)
	}
	if res.TornTail {
		t.Fatalf("mid-log corruption misreported as torn tail")
	}
	// Replay stops at the last valid record BEFORE the corruption; the
	// intact "gamma" after it is unreachable (its predecessor is gone).
	if len(res.Records) != 1 || string(res.Records[0]) != "alpha" {
		t.Fatalf("recovered %d records, want just the prefix before corruption", len(res.Records))
	}
	if size := fileSize(t, fs, "wal"); size != 13 {
		t.Fatalf("post-open WAL size = %d, want truncated to valid prefix 13", size)
	}
}

func TestWALZeroLengthFrame(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"))
	// Append a full frame of zeros (stale zero-fill): length 0 is framing
	// corruption, not a record.
	f, err := fs.OpenRW("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 16), fileSize(t, fs, "wal")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res := walRecords(t, fs, "wal")
	if res.CorruptRecords != 1 || len(res.Records) != 1 {
		t.Fatalf("zero-fill tail: %+v, want 1 corrupt frame after 1 record", res)
	}
}

func TestWALImplausibleLength(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"))
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(maxWALRecord+1))
	f, err := fs.OpenRW("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(frame[:], fileSize(t, fs, "wal")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res := walRecords(t, fs, "wal")
	if res.CorruptRecords != 1 || len(res.Records) != 1 {
		t.Fatalf("oversized length: %+v, want 1 corrupt frame after 1 record", res)
	}
}

func TestWALTrim(t *testing.T) {
	fs := NewFaultFS()
	w, _, err := OpenWAL(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Trim(); err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if w.Size() != 0 {
		t.Fatalf("post-trim size = %d", w.Size())
	}
	// Appends after a trim start a fresh log.
	if err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	res := walRecords(t, fs, "wal")
	if len(res.Records) != 1 || string(res.Records[0]) != "fresh" {
		t.Fatalf("post-trim log: %+v", res)
	}
}

func TestScanWALDoesNotTruncate(t *testing.T) {
	fs := NewFaultFS()
	walAppendAll(t, fs, "wal", []byte("alpha"), []byte("beta"))
	size := fileSize(t, fs, "wal")
	truncateTo(t, fs, "wal", size-2)
	torn := fileSize(t, fs, "wal")

	res, err := ScanWAL(fs, "wal")
	if err != nil {
		t.Fatalf("ScanWAL: %v", err)
	}
	if !res.TornTail || len(res.Records) != 1 {
		t.Fatalf("ScanWAL on torn log: %+v", res)
	}
	if got := fileSize(t, fs, "wal"); got != torn {
		t.Fatalf("ScanWAL modified the file: size %d -> %d", torn, got)
	}
	// Missing file scans as empty, no error.
	res, err = ScanWAL(fs, "absent")
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("ScanWAL on missing file: %+v, %v", res, err)
	}
}

func TestWALRejectsBadRecordSize(t *testing.T) {
	fs := NewFaultFS()
	w, _, err := OpenWAL(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Fatalf("Append(nil) succeeded")
	}
}
