package storage

import "testing"

func TestBufferCapacityOne(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 1)
	p1, p2 := d.Alloc(), d.Alloc()
	b.Read(p1)
	b.Read(p2) // evicts p1
	if b.Contains(p1) || !b.Contains(p2) {
		t.Fatal("capacity-1 buffer should hold exactly the last page")
	}
	b.Read(p1)
	b.Read(p1)
	s := b.Stats()
	// p1 read twice: one miss then one hit.
	if s.PageReads != 3 || s.LogicalReads != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRestoreStats(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	id := d.Alloc()
	b.Read(id)
	snap := b.Stats()
	b.Read(id)
	b.Write(id, []byte("x"))
	b.RestoreStats(snap)
	if b.Stats() != snap {
		t.Fatalf("restore failed: %+v vs %+v", b.Stats(), snap)
	}
}

func TestWriteInstallsIntoCache(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	id := d.Alloc()
	b.Write(id, []byte("abc"))
	if !b.Contains(id) {
		t.Fatal("write-through should install the page")
	}
	// Overwriting a cached page must refresh the cached bytes.
	b.Write(id, []byte("xyz"))
	got := b.Read(id)
	if string(got[:3]) != "xyz" {
		t.Fatalf("cached page stale: %q", got[:3])
	}
}

func TestZeroCapacityWriteDoesNotCache(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 0)
	id := d.Alloc()
	b.Write(id, []byte("q"))
	if b.Contains(id) {
		t.Fatal("zero-capacity buffer must not cache writes")
	}
}

func TestManyPagesChurn(t *testing.T) {
	// Sequential scan over 100 pages through a 10-page buffer misses on
	// every page, twice.
	d := NewDisk(16)
	b := NewBuffer(d, 10)
	var ids []PageID
	for i := 0; i < 100; i++ {
		ids = append(ids, d.Alloc())
	}
	for pass := 0; pass < 2; pass++ {
		for _, id := range ids {
			b.Read(id)
		}
	}
	if s := b.Stats(); s.PageReads != 200 {
		t.Fatalf("sequential churn should miss everything: %+v", s)
	}
	// A repeated hot page in a small working set hits.
	b.ResetStats()
	for i := 0; i < 50; i++ {
		b.Read(ids[0])
	}
	if s := b.Stats(); s.PageReads != 1 {
		t.Fatalf("hot page should hit after first read: %+v", s)
	}
}
