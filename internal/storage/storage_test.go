package storage

import (
	"bytes"
	"testing"
)

func TestDiskAllocReadWrite(t *testing.T) {
	d := NewDisk(64)
	if d.PageSize() != 64 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	id := d.Alloc()
	if d.NumPages() != 1 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	if got := d.read(id); len(got) != 64 || !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("fresh page should be zeroed")
	}
	d.write(id, []byte("hello"))
	got := d.read(id)
	if string(got[:5]) != "hello" {
		t.Fatalf("read back %q", got[:5])
	}
	if got[5] != 0 {
		t.Fatal("tail should stay zero")
	}
	// Overwrite with shorter data zero-fills the remainder.
	d.write(id, []byte("xy"))
	got = d.read(id)
	if string(got[:2]) != "xy" || got[2] != 0 {
		t.Fatalf("overwrite produced %q", got[:5])
	}
}

func TestDiskPanicsOnBadAccess(t *testing.T) {
	d := NewDisk(32)
	assertPanics(t, "read unallocated", func() { d.read(0) })
	assertPanics(t, "read negative", func() { d.read(-5) })
	id := d.Alloc()
	assertPanics(t, "oversized write", func() { d.write(id, make([]byte, 33)) })
	assertPanics(t, "zero page size", func() { NewDisk(0) })
}

func TestBufferCountsLogicalAndPhysical(t *testing.T) {
	d := NewDisk(32)
	b := NewBuffer(d, 4)
	id := d.Alloc()
	b.Write(id, []byte("abc"))
	if s := b.Stats(); s.PageWrites != 1 {
		t.Fatalf("writes = %d, want 1", s.PageWrites)
	}
	// First read after write hits the cache (write-through installed it).
	b.Read(id)
	if s := b.Stats(); s.LogicalReads != 1 || s.PageReads != 0 {
		t.Fatalf("stats after cached read: %+v", s)
	}
	b.DropAll()
	b.Read(id)
	if s := b.Stats(); s.LogicalReads != 2 || s.PageReads != 1 {
		t.Fatalf("stats after cold read: %+v", s)
	}
	// Second read is a hit again.
	b.Read(id)
	if s := b.Stats(); s.LogicalReads != 3 || s.PageReads != 1 {
		t.Fatalf("stats after warm read: %+v", s)
	}
}

func TestBufferLRUEviction(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	ids := []PageID{d.Alloc(), d.Alloc(), d.Alloc()}
	for i, id := range ids {
		d.write(id, []byte{byte(i)})
	}
	b.Read(ids[0])
	b.Read(ids[1])
	b.Read(ids[2]) // evicts ids[0]
	if b.Contains(ids[0]) {
		t.Fatal("ids[0] should be evicted")
	}
	if !b.Contains(ids[1]) || !b.Contains(ids[2]) {
		t.Fatal("ids[1], ids[2] should be cached")
	}
	// Touch ids[1] so it becomes MRU; reading ids[0] should evict ids[2].
	b.Read(ids[1])
	b.Read(ids[0])
	if b.Contains(ids[2]) {
		t.Fatal("ids[2] should be evicted after LRU rotation")
	}
	if !b.Contains(ids[1]) {
		t.Fatal("recently used ids[1] should survive")
	}
}

func TestBufferZeroCapacity(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 0)
	id := d.Alloc()
	b.Write(id, []byte("z"))
	for i := 0; i < 5; i++ {
		b.Read(id)
	}
	s := b.Stats()
	if s.PageReads != 5 {
		t.Fatalf("zero-capacity buffer should miss every read, got %d", s.PageReads)
	}
	if s.LogicalReads != 5 {
		t.Fatalf("logical reads = %d", s.LogicalReads)
	}
}

func TestBufferNegativeCapacityClamped(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, -3)
	if b.Capacity() != 0 {
		t.Fatalf("capacity = %d, want 0", b.Capacity())
	}
	b.SetCapacity(-1)
	if b.Capacity() != 0 {
		t.Fatalf("capacity after SetCapacity(-1) = %d", b.Capacity())
	}
}

func TestBufferShrinkEvicts(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 4)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id := d.Alloc()
		ids = append(ids, id)
		b.Read(id)
	}
	b.SetCapacity(1)
	cached := 0
	for _, id := range ids {
		if b.Contains(id) {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("after shrink to 1, %d pages cached", cached)
	}
	if !b.Contains(ids[3]) {
		t.Fatal("most recently used page should survive the shrink")
	}
}

func TestBufferWriteThrough(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	id := d.Alloc()
	b.Write(id, []byte("first"))
	b.Write(id, []byte("secon"))
	// Data must be durable on disk regardless of cache state.
	b.DropAll()
	got := b.Read(id)
	if string(got[:5]) != "secon" {
		t.Fatalf("read %q after write-through", got[:5])
	}
	if s := b.Stats(); s.PageWrites != 2 {
		t.Fatalf("writes = %d, want 2", s.PageWrites)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{LogicalReads: 10, PageReads: 5, PageWrites: 2, DecodeHits: 4, DecodeMisses: 6}
	b := Stats{LogicalReads: 3, PageReads: 1, PageWrites: 1, DecodeHits: 1, DecodeMisses: 2}
	if got := a.Sub(b); got != (Stats{LogicalReads: 7, PageReads: 4, PageWrites: 1, DecodeHits: 3, DecodeMisses: 4}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Add(b); got != (Stats{LogicalReads: 13, PageReads: 6, PageWrites: 3, DecodeHits: 5, DecodeMisses: 8}) {
		t.Fatalf("Add = %+v", got)
	}
	if a.PageAccesses() != 7 {
		t.Fatalf("PageAccesses = %d", a.PageAccesses())
	}
}

func TestResetStatsKeepsCache(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	id := d.Alloc()
	b.Read(id)
	b.ResetStats()
	if s := b.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
	b.Read(id)
	if s := b.Stats(); s.PageReads != 0 {
		t.Fatal("cache should have survived ResetStats")
	}
}

func TestBufferAlloc(t *testing.T) {
	d := NewDisk(16)
	b := NewBuffer(d, 2)
	id := b.Alloc()
	if d.NumPages() != 1 {
		t.Fatal("Alloc should allocate on the disk")
	}
	if s := b.Stats(); s.PageAccesses() != 0 {
		t.Fatal("Alloc itself should be free")
	}
	b.Write(id, []byte("a"))
	if s := b.Stats(); s.PageWrites != 1 {
		t.Fatal("write after alloc should cost one page write")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
