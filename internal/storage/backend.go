package storage

// Backend identifies how a tree's nodes are physically represented behind
// a Buffer handle.
//
// BackendPaged is the disk-resident representation of the paper: every
// node is an encoded page, reads go through the LRU cache and count
// physical I/O on misses. BackendFlat marks a buffer that fronts no pages
// at all — the tree's nodes live in a contiguous in-memory arena
// (rtree flat mode) and the buffer is retained purely as the I/O ledger:
// reads are counted (LogicalReads, DecodeHits) but no page is ever
// fetched, decoded, cached or evicted, so PageReads, PageWrites and
// DecodeMisses stay identically zero.
type Backend uint8

const (
	// BackendPaged is the default page-cache representation.
	BackendPaged Backend = iota
	// BackendFlat marks a stats-only ledger for arena-resident trees.
	BackendFlat
)

// String returns the backend's knob value ("paged", "flat").
func (b Backend) String() string {
	if b == BackendFlat {
		return "flat"
	}
	return "paged"
}

// NewFlatLedger creates the stats ledger of a flat (arena-resident) tree:
// a capacity-0 buffer over disk whose only job is counting node accesses.
// Flat reads bypass the page path entirely (rtree.Tree serves them from
// its node arena) and report themselves through NoteFlatRead, so the
// ledger's Stats keep the accounting invariants every consumer relies on —
// LogicalReads counts node accesses exactly like a paged run, while
// PageAccesses() and DecodeMisses are structurally zero.
//
// The ledger supports the full Buffer surface (Fork for per-worker or
// per-request isolation, Stats/ResetStats/RestoreStats, SetOnEvict), so
// joins, the parallel engine and the service run unchanged; forks inherit
// the flat backend.
func NewFlatLedger(disk *Disk) *Buffer {
	b := NewBuffer(disk, 0)
	b.backend = BackendFlat
	return b
}

// Backend reports the buffer's representation: BackendFlat for ledgers
// created by NewFlatLedger (and their forks), BackendPaged otherwise.
func (b *Buffer) Backend() Backend { return b.backend }

// NoteFlatRead counts one arena node access on a flat ledger: a logical
// read that was served decode-free. It is the entire accounting of the
// flat hot path — two counter increments, no map lookup, no LRU touch —
// and keeps DecodeHits == LogicalReads as the flat-mode invariant
// (every access reuses the arena node; nothing is ever re-parsed).
func (b *Buffer) NoteFlatRead() {
	b.stats.LogicalReads++
	b.stats.DecodeHits++
}
