// Package storage simulates the disk substrate the CIJ paper measures
// against: a page-structured store (1 KB pages by default, as in Section V)
// fronted by an LRU buffer whose capacity is a percentage of the data size.
//
// Every R-tree node occupies exactly one page. All node accesses go through
// a Buffer; a buffer miss is one physical page access — the unit of the
// paper's "page accesses" metric. The simulated disk has no latency: the
// experiment harness can convert page counts to charged time with the
// paper's 10 ms/page model.
//
// # Durability
//
// The in-memory Disk stays the working representation, but the package
// also provides the primitives the service's durable tier is built from,
// all behind the FS/File seam (fs.go) so tests can inject faults:
//
//   - Page files (pagefile.go): SaveDiskFile writes a Disk as one
//     checksummed image — a CRC-framed header plus one CRC-framed frame
//     per page, binding each checksum to its page ID — replaced
//     atomically via WriteFileAtomic (tmp + fsync + rename + dir sync).
//     OpenDiskFile restores a byte-identical Disk, so a reopened tree
//     reads the same pages and counts the same I/O as the original;
//     VerifyDiskFile is the read-only integrity check fsck uses.
//   - Write-ahead log (wal.go): CRC-framed, fsync-gated records with a
//     torn-tail-tolerant open scan — the expected crash shape (a partial
//     final frame) is repaired silently, while a mid-log checksum
//     mismatch is surfaced as corruption and the log truncated to its
//     valid prefix.
//   - Fault injection (faultfs.go): FaultFS is an in-memory FS that can
//     fail or crash at any write/sync/rename, in three crash modes
//     (lose-unsynced, keep-unsynced, torn-write). The crash-recovery
//     matrix in internal/check drives every fault point through it.
//
// OSFS is the production implementation over the real filesystem.
package storage

import "fmt"

// DefaultPageSize is the page size used throughout the paper's evaluation
// ("a disk page size of 1K bytes").
const DefaultPageSize = 1024

// PageID identifies a page on the simulated disk. The zero value is a valid
// page; InvalidPage marks "no page".
type PageID int64

// InvalidPage is the sentinel for a missing page reference.
const InvalidPage PageID = -1

// Disk is an in-memory simulation of a page-structured disk. It only
// tracks raw pages; caching and I/O accounting live in Buffer.
//
// Disk is not safe for concurrent mutation: Alloc and write must not run
// while any other access is in flight. Concurrent reads of an immutable
// disk ARE safe — read only returns pages, never touching Disk state —
// which is what the parallel join engine relies on: trees are built
// single-threaded, then workers read them through private Buffer forks
// (Buffer.Fork) with no locking.
//
// Clone extends that contract to mutation: it snapshots the disk
// copy-on-write, so a writer may keep allocating and writing on the clone
// while any number of readers keep reading the original. The two disks
// share page storage until a shared page is written, at which point the
// writing disk reallocates it privately — the original's page slices are
// never touched after the clone, which is what makes live-dataset version
// snapshots safe without any locking on the read side.
type Disk struct {
	pageSize int
	pages    [][]byte
	// shared flags pages whose backing slice is (potentially) referenced
	// by another disk in this clone lineage; a write to a shared page must
	// reallocate before touching bytes. nil means "no page is shared"
	// (a disk that was never cloned).
	shared []bool
	// origin is the disk this one was cloned from (nil for a root disk).
	// It exists for lineage checks — rtree.CloneMut refuses buffers whose
	// disk is not a clone of the tree's own — not for data access.
	origin *Disk
}

// NewDisk creates an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: invalid page size %d", pageSize))
	}
	return &Disk{pageSize: pageSize}
}

// PageSize returns the fixed page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages (the "data size on disk"
// in pages, used to size buffers as a percentage).
func (d *Disk) NumPages() int { return len(d.pages) }

// Alloc allocates a new zeroed page and returns its id.
func (d *Disk) Alloc() PageID {
	d.pages = append(d.pages, make([]byte, d.pageSize))
	if d.shared != nil {
		d.shared = append(d.shared, false)
	}
	return PageID(len(d.pages) - 1)
}

// Clone returns a copy-on-write snapshot of the disk: the clone sees the
// same page contents, allocates and writes independently, and never
// perturbs pages the original (or its readers) can see. Both disks mark
// every currently allocated page shared, so a later write on EITHER side
// reallocates before mutating — the snapshot holds even if the source
// keeps being written, though in the intended use (dataset versioning)
// the source is frozen the moment it is cloned.
func (d *Disk) Clone() *Disk {
	n := len(d.pages)
	c := &Disk{
		pageSize: d.pageSize,
		pages:    append(make([][]byte, 0, n), d.pages...),
		shared:   make([]bool, n),
		origin:   d,
	}
	for i := range c.shared {
		c.shared[i] = true
	}
	// The source's shared bitmap may be shorter than its page table when
	// pages were allocated after an earlier clone; (re)build it to cover
	// everything now shared with c.
	d.shared = make([]bool, n)
	for i := range d.shared {
		d.shared[i] = true
	}
	return c
}

// Origin returns the disk this one was cloned from, or nil for a disk
// created with NewDisk.
func (d *Disk) Origin() *Disk { return d.origin }

// read returns the raw page contents. Callers must treat the slice as
// read-only.
func (d *Disk) read(id PageID) []byte {
	if id < 0 || int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: read of unallocated page %d", id))
	}
	return d.pages[id]
}

// write replaces the page contents. data must be at most one page.
func (d *Disk) write(id PageID, data []byte) {
	if id < 0 || int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: write of unallocated page %d", id))
	}
	if len(data) > d.pageSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize))
	}
	if int(id) < len(d.shared) && d.shared[id] {
		// The slice is visible through another disk of the clone lineage:
		// writing in place would corrupt that snapshot. Detach first.
		d.pages[id] = make([]byte, d.pageSize)
		d.shared[id] = false
	}
	page := d.pages[id]
	copy(page, data)
	for i := len(data); i < len(page); i++ {
		page[i] = 0
	}
}
