// Package storage simulates the disk substrate the CIJ paper measures
// against: a page-structured store (1 KB pages by default, as in Section V)
// fronted by an LRU buffer whose capacity is a percentage of the data size.
//
// Every R-tree node occupies exactly one page. All node accesses go through
// a Buffer; a buffer miss is one physical page access — the unit of the
// paper's "page accesses" metric. The simulated disk has no latency: the
// experiment harness can convert page counts to charged time with the
// paper's 10 ms/page model.
package storage

import "fmt"

// DefaultPageSize is the page size used throughout the paper's evaluation
// ("a disk page size of 1K bytes").
const DefaultPageSize = 1024

// PageID identifies a page on the simulated disk. The zero value is a valid
// page; InvalidPage marks "no page".
type PageID int64

// InvalidPage is the sentinel for a missing page reference.
const InvalidPage PageID = -1

// Disk is an in-memory simulation of a page-structured disk. It only
// tracks raw pages; caching and I/O accounting live in Buffer.
//
// Disk is not safe for concurrent mutation: Alloc and write must not run
// while any other access is in flight. Concurrent reads of an immutable
// disk ARE safe — read only returns pages, never touching Disk state —
// which is what the parallel join engine relies on: trees are built
// single-threaded, then workers read them through private Buffer forks
// (Buffer.Fork) with no locking.
type Disk struct {
	pageSize int
	pages    [][]byte
}

// NewDisk creates an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: invalid page size %d", pageSize))
	}
	return &Disk{pageSize: pageSize}
}

// PageSize returns the fixed page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages (the "data size on disk"
// in pages, used to size buffers as a percentage).
func (d *Disk) NumPages() int { return len(d.pages) }

// Alloc allocates a new zeroed page and returns its id.
func (d *Disk) Alloc() PageID {
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// read returns the raw page contents. Callers must treat the slice as
// read-only.
func (d *Disk) read(id PageID) []byte {
	if id < 0 || int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: read of unallocated page %d", id))
	}
	return d.pages[id]
}

// write replaces the page contents. data must be at most one page.
func (d *Disk) write(id PageID, data []byte) {
	if id < 0 || int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: write of unallocated page %d", id))
	}
	if len(data) > d.pageSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize))
	}
	page := d.pages[id]
	copy(page, data)
	for i := len(data); i < len(page); i++ {
		page[i] = 0
	}
}
