package storage

import (
	"bytes"
	"testing"
)

// testDisk builds a small disk with deterministic page contents.
func testDisk(t *testing.T, pages int) *Disk {
	t.Helper()
	d := NewDisk(DefaultPageSize)
	for i := 0; i < pages; i++ {
		id := d.Alloc()
		p := make([]byte, DefaultPageSize)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		d.write(id, p)
	}
	return d
}

func TestPageFileRoundtrip(t *testing.T) {
	fs := NewFaultFS()
	d := testDisk(t, 7)
	if err := SaveDiskFile(fs, "data.pages", d); err != nil {
		t.Fatalf("SaveDiskFile: %v", err)
	}
	got, err := OpenDiskFile(fs, "data.pages")
	if err != nil {
		t.Fatalf("OpenDiskFile: %v", err)
	}
	if got.PageSize() != d.PageSize() || got.NumPages() != d.NumPages() {
		t.Fatalf("restored disk shape %d/%d, want %d/%d",
			got.PageSize(), got.NumPages(), d.PageSize(), d.NumPages())
	}
	for i := 0; i < d.NumPages(); i++ {
		if !bytes.Equal(got.PageBytes(PageID(i)), d.PageBytes(PageID(i))) {
			t.Fatalf("page %d not byte-identical after restore", i)
		}
	}
	// Atomic save leaves no temp file behind.
	for _, p := range fs.DumpPaths() {
		if p != "data.pages" {
			t.Fatalf("stray file after save: %s", p)
		}
	}
}

func TestPageFileEmptyDisk(t *testing.T) {
	fs := NewFaultFS()
	d := NewDisk(DefaultPageSize)
	if err := SaveDiskFile(fs, "empty.pages", d); err != nil {
		t.Fatalf("SaveDiskFile: %v", err)
	}
	got, err := OpenDiskFile(fs, "empty.pages")
	if err != nil {
		t.Fatalf("OpenDiskFile: %v", err)
	}
	if got.NumPages() != 0 {
		t.Fatalf("empty disk restored with %d pages", got.NumPages())
	}
}

func TestPageFileDetectsCorruption(t *testing.T) {
	save := func(t *testing.T) FS {
		fs := NewFaultFS()
		if err := SaveDiskFile(fs, "data.pages", testDisk(t, 3)); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	cases := []struct {
		name string
		mut  func(t *testing.T, fs FS)
	}{
		{"header magic", func(t *testing.T, fs FS) { corruptAt(t, fs, "data.pages", 0) }},
		{"header fields", func(t *testing.T, fs FS) { corruptAt(t, fs, "data.pages", 9) }},
		{"page payload", func(t *testing.T, fs FS) {
			corruptAt(t, fs, "data.pages", pageFileHeaderSize+pageFrameHeader+100)
		}},
		{"page id", func(t *testing.T, fs FS) {
			// Swap-in a wrong-but-plausible frame id: a misdirected write.
			corruptAt(t, fs, "data.pages", pageFileHeaderSize+4)
		}},
		{"truncated", func(t *testing.T, fs FS) {
			truncateTo(t, fs, "data.pages", fileSize(t, fs, "data.pages")-10)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := save(t)
			tc.mut(t, fs)
			if _, err := OpenDiskFile(fs, "data.pages"); err == nil {
				t.Fatalf("OpenDiskFile accepted corrupted file (%s)", tc.name)
			}
			if _, _, err := VerifyDiskFile(fs, "data.pages"); err == nil {
				t.Fatalf("VerifyDiskFile accepted corrupted file (%s)", tc.name)
			}
		})
	}
}

func TestVerifyDiskFileClean(t *testing.T) {
	fs := NewFaultFS()
	if err := SaveDiskFile(fs, "data.pages", testDisk(t, 4)); err != nil {
		t.Fatal(err)
	}
	pages, pageSize, err := VerifyDiskFile(fs, "data.pages")
	if err != nil {
		t.Fatalf("VerifyDiskFile: %v", err)
	}
	if pages != 4 || pageSize != DefaultPageSize {
		t.Fatalf("VerifyDiskFile = %d pages of %d bytes, want 4 of %d", pages, pageSize, DefaultPageSize)
	}
}

func TestPageFileRoundtripOSFS(t *testing.T) {
	dir := t.TempDir()
	fs := OSFS{}
	d := testDisk(t, 5)
	path := dir + "/data.pages"
	if err := SaveDiskFile(fs, path, d); err != nil {
		t.Fatalf("SaveDiskFile: %v", err)
	}
	got, err := OpenDiskFile(fs, path)
	if err != nil {
		t.Fatalf("OpenDiskFile: %v", err)
	}
	for i := 0; i < d.NumPages(); i++ {
		if !bytes.Equal(got.PageBytes(PageID(i)), d.PageBytes(PageID(i))) {
			t.Fatalf("page %d differs through OSFS", i)
		}
	}
}
