package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Page-file format: the durable image of a Disk, one file per dataset
// version. The layout preserves the paper's page structure exactly — the
// payload of frame i is byte-for-byte page i of the simulated disk — so a
// dataset restored from a snapshot performs the identical page accesses
// (and produces identical pair sets) as the in-memory original.
//
//	file header (24 bytes):
//	  [0:8]   magic "CIJPAGE1" (format version rides in the magic)
//	  [8:12]  page size, uint32 LE
//	  [12:16] page count, uint32 LE
//	  [16:20] CRC-32C of bytes [0:16]
//	  [20:24] reserved (zero)
//	frame i at 24 + i*(8 + pageSize):
//	  [0:4]   CRC-32C of (page id || payload)
//	  [4:8]   page id, uint32 LE (binds the frame to its slot, so a
//	          misdirected write is a checksum error, not silent corruption)
//	  [8:8+pageSize] the raw page bytes
const (
	pageFileMagic      = "CIJPAGE1"
	pageFileHeaderSize = 24
	pageFrameHeader    = 8
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func pageFrameSize(pageSize int) int { return pageFrameHeader + pageSize }

func frameCRC(id uint32, payload []byte) uint32 {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], id)
	crc := crc32.Update(0, crcTable, idb[:])
	return crc32.Update(crc, crcTable, payload)
}

// EncodeDiskImage serializes the disk into the page-file format. The
// image is built in memory and written in one pwrite by SaveDiskFile, so
// a snapshot is a small, enumerable number of fault points (create,
// write, fsync, rename, dir fsync) rather than one per page.
func EncodeDiskImage(d *Disk) []byte {
	n := d.NumPages()
	frame := pageFrameSize(d.pageSize)
	img := make([]byte, pageFileHeaderSize+n*frame)
	copy(img[0:8], pageFileMagic)
	binary.LittleEndian.PutUint32(img[8:12], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(img[12:16], uint32(n))
	binary.LittleEndian.PutUint32(img[16:20], crc32.Checksum(img[0:16], crcTable))
	for i := 0; i < n; i++ {
		off := pageFileHeaderSize + i*frame
		payload := d.pages[i]
		binary.LittleEndian.PutUint32(img[off:off+4], frameCRC(uint32(i), payload))
		binary.LittleEndian.PutUint32(img[off+4:off+8], uint32(i))
		copy(img[off+pageFrameHeader:], payload)
	}
	return img
}

// SaveDiskFile writes the disk's durable image to path atomically (temp
// file, fsync, rename, directory fsync): after any crash, path holds
// either the previous complete snapshot or the new one.
func SaveDiskFile(fs FS, path string, d *Disk) error {
	return WriteFileAtomic(fs, path, EncodeDiskImage(d))
}

// readPageFileHeader preads and validates the header, returning
// (pageSize, pageCount).
func readPageFileHeader(f File, path string) (int, int, error) {
	var hdr [pageFileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, 0, fmt.Errorf("storage: %s: reading page-file header: %w", path, err)
	}
	if string(hdr[0:8]) != pageFileMagic {
		return 0, 0, fmt.Errorf("storage: %s: not a page file (magic %q)", path, hdr[0:8])
	}
	if got, want := crc32.Checksum(hdr[0:16], crcTable), binary.LittleEndian.Uint32(hdr[16:20]); got != want {
		return 0, 0, fmt.Errorf("storage: %s: page-file header checksum mismatch (got %08x, want %08x)", path, got, want)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	count := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if pageSize <= 0 || pageSize > 1<<20 {
		return 0, 0, fmt.Errorf("storage: %s: implausible page size %d", path, pageSize)
	}
	return pageSize, count, nil
}

// readPageFrame preads and validates frame i into a fresh page slice.
func readPageFrame(f File, path string, i, pageSize int) ([]byte, error) {
	buf := make([]byte, pageFrameSize(pageSize))
	off := int64(pageFileHeaderSize) + int64(i)*int64(pageFrameSize(pageSize))
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: %s: reading page %d: %w", path, i, err)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[0:4])
	id := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[pageFrameHeader:]
	if int(id) != i {
		return nil, fmt.Errorf("storage: %s: page %d: frame carries id %d (misdirected write)", path, i, id)
	}
	if got := frameCRC(id, payload); got != wantCRC {
		return nil, fmt.Errorf("storage: %s: page %d: checksum mismatch (got %08x, want %08x)", path, i, got, wantCRC)
	}
	return payload, nil
}

// OpenDiskFile preads a snapshot back into a Disk, verifying every page
// checksum. The restored disk has the exact page population and bytes of
// the saved one; Buffer, rtree and COW-clone semantics apply to it
// unchanged, which is what keeps the durable tier's I/O accounting
// byte-identical to the simulated one.
func OpenDiskFile(fs FS, path string) (*Disk, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pageSize, count, err := readPageFileHeader(f, path)
	if err != nil {
		return nil, err
	}
	if size, err := f.Size(); err == nil {
		if want := int64(pageFileHeaderSize) + int64(count)*int64(pageFrameSize(pageSize)); size != want {
			return nil, fmt.Errorf("storage: %s: truncated or oversized page file (%d bytes, want %d for %d pages)", path, size, want, count)
		}
	}
	d := NewDisk(pageSize)
	d.pages = make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		payload, err := readPageFrame(f, path, i, pageSize)
		if err != nil {
			return nil, err
		}
		d.pages = append(d.pages, payload)
	}
	return d, nil
}

// VerifyDiskFile validates a snapshot without materializing a Disk: the
// header, the size, and every frame checksum. fsck's per-snapshot pass.
func VerifyDiskFile(fs FS, path string) (pages, pageSize int, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	pageSize, count, err := readPageFileHeader(f, path)
	if err != nil {
		return 0, 0, err
	}
	if size, err := f.Size(); err == nil {
		if want := int64(pageFileHeaderSize) + int64(count)*int64(pageFrameSize(pageSize)); size != want {
			return 0, 0, fmt.Errorf("storage: %s: truncated or oversized page file (%d bytes, want %d for %d pages)", path, size, want, count)
		}
	}
	for i := 0; i < count; i++ {
		if _, err := readPageFrame(f, path, i, pageSize); err != nil {
			return 0, 0, err
		}
	}
	return count, pageSize, nil
}

// PageBytes returns the raw bytes of page id — the durable-equivalence
// tests compare these byte-for-byte between a disk and its restored
// snapshot. The slice is the live page; callers must not modify it.
func (d *Disk) PageBytes(id PageID) []byte { return d.read(id) }
