package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam of the durable tier. Every byte the page
// store, the WAL and the manifest persist goes through this interface, so
// the crash-recovery tests can substitute a fault-injecting in-memory
// implementation (FaultFS) and exercise a crash at every write, fsync and
// rename point, while production runs on OSFS.
//
// The durability contract the recovery protocol assumes — and FaultFS
// models — is the POSIX one:
//
//   - File data reaches stable storage only at Sync. A crash may lose (or
//     keep, or tear) any write that was not followed by a Sync.
//   - Rename is atomic: after a crash the name refers to either the old
//     or the new file, never a mixture. Combined with "write tmp, sync
//     tmp, rename, sync dir" this yields atomic whole-file replacement.
//   - Directory entries (Create, Rename, Remove) are durable after
//     SyncDir on the containing directory.
type FS interface {
	// Create opens name for read/write, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens name read-only; it fails if the file does not exist.
	Open(name string) (File, error)
	// OpenRW opens name for read/write, creating it (empty) when absent
	// and leaving existing contents alone. The WAL opens through it.
	OpenRW(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// List returns the names (not paths) of the entries of dir, sorted.
	List(dir string) ([]string, error)
	// SyncDir makes dir's entries (creations, renames, removals) durable.
	SyncDir(dir string) error
}

// File is the handle surface the durable tier needs: positional reads and
// writes (pread/pwrite — no shared cursor, so readers never race an
// appender), truncation, fsync and size.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// OSFS is the production FS: the real filesystem through package os.
type OSFS struct{}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenRW implements FS.
func (OSFS) OpenRW(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: fsync on the directory handle, the POSIX way to
// make renames and creations durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic replaces path with data using the crash-safe sequence:
// write to a sibling temp file, fsync it, rename over path, fsync the
// directory. After any crash the name holds either the complete old or the
// complete new contents.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// ReadFileAll reads the entire contents of path through fs.
func ReadFileAll(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	n, err := f.ReadAt(data, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if int64(n) != size {
		return nil, fmt.Errorf("storage: short read of %s: %d of %d bytes", path, n, size)
	}
	return data, nil
}
