package storage

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"sync"
)

// Errors surfaced by FaultFS fault injection. The durable tier treats any
// FS error as "the batch did not commit"; the crash-recovery tests assert
// that after observing one of these, a restart recovers a consistent
// installed version.
var (
	// ErrCrashed is returned by every operation after an injected (or
	// forced) crash: the process view of the filesystem is gone.
	ErrCrashed = errors.New("storage: filesystem crashed")
	// ErrInjectedFault is the transient failure of a FaultPlan.FailAfter
	// injection: the operation fails once, the filesystem keeps working.
	ErrInjectedFault = errors.New("storage: injected fault")
)

// CrashMode selects what survives an injected crash — the knob that makes
// the recovery matrix cover both directions in which real disks betray
// unsynced data.
type CrashMode int

const (
	// CrashLoseUnsynced drops every write since the last Sync of each
	// file: only explicitly synced data survives. The strictest model —
	// recovery may rely on nothing it did not fsync.
	CrashLoseUnsynced CrashMode = iota
	// CrashKeepUnsynced retains all written data, synced or not: the page
	// cache happened to reach disk. Recovery must tolerate MORE state
	// than it fsynced (e.g. WAL records past the last acknowledged one).
	CrashKeepUnsynced
	// CrashTornWrite is CrashKeepUnsynced with the faulting write applied
	// only partially (a torn sector): the classic corrupt-tail shape the
	// WAL's CRC framing exists to detect.
	CrashTornWrite
)

func (m CrashMode) String() string {
	switch m {
	case CrashLoseUnsynced:
		return "lose-unsynced"
	case CrashKeepUnsynced:
		return "keep-unsynced"
	case CrashTornWrite:
		return "torn-write"
	}
	return fmt.Sprintf("CrashMode(%d)", int(m))
}

// FaultPlan schedules an injection. Fault points are the operations that
// matter for durability — Create, OpenRW (when it creates), WriteAt,
// Truncate, Sync, SyncDir, Rename, Remove — counted across the whole
// filesystem in execution order.
type FaultPlan struct {
	// CrashAfter, when > 0, crashes the filesystem AT the Nth fault point
	// (1-based): the operation fails with ErrCrashed (applying partially
	// under CrashTornWrite), and every later operation fails too, until
	// Restart.
	CrashAfter int64
	// Mode selects what survives a CrashAfter crash.
	Mode CrashMode
	// FailAfter, when > 0, makes the Nth fault point fail once with
	// ErrInjectedFault — a transient error, not a crash; the filesystem
	// keeps working and nothing is lost.
	FailAfter int64
}

// memInode is one file: the volatile contents (what readers see) and the
// synced image (what a crash preserves under CrashLoseUnsynced).
type memInode struct {
	data   []byte
	synced []byte
}

// fileHandle is an open descriptor. Handles from before a crash are dead:
// they carry the generation they were opened under, and every operation
// re-checks it.
type fileHandle struct {
	fs  *FaultFS
	ino *memInode
	gen int64
}

// FaultFS is an in-memory filesystem with crash semantics, built for the
// durability tests: it distinguishes volatile from synced state per file,
// injects failures and crashes at any fault point, and can Restart into
// exactly the state a real machine would reboot with.
//
// The durability model matches the contract documented on FS: directory
// operations (Create, Rename, Remove) are atomic and immediately durable;
// file DATA is volatile until Sync. A crash therefore never leaves a
// half-renamed file, but may lose, keep, or tear unsynced writes
// depending on CrashMode — precisely the envelope the WAL and the
// write-tmp-then-rename manifest protocol are designed for.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memInode
	dirs    map[string]bool
	gen     int64 // bumped at every crash; open handles die with their generation
	ops     int64 // fault points executed
	crashed bool
	plan    *FaultPlan
}

// NewFaultFS creates an empty filesystem with no fault plan.
func NewFaultFS() *FaultFS {
	return &FaultFS{
		files: make(map[string]*memInode),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

// SetPlan installs (or clears, with nil) the fault plan. The op counter
// keeps running across plans; CrashAfter/FailAfter are absolute positions
// in that count.
func (fs *FaultFS) SetPlan(plan *FaultPlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.plan = plan
}

// Ops returns how many fault points have executed — a dry run with no
// plan measures the workload's fault-point count, and the matrix then
// crashes at every position.
func (fs *FaultFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the filesystem is in the post-crash state.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Crash forces an immediate crash (the kill -9 case: no faulting
// operation, just a dead process) with the given survival mode.
func (fs *FaultFS) Crash(mode CrashMode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.crashed {
		fs.crashLocked(mode, nil, nil, 0)
	}
}

// Restart reboots a crashed filesystem: the surviving state becomes the
// new volatile AND synced state, open handles stay dead, and operations
// work again. It panics if the filesystem has not crashed — a restart
// without a crash has no defined survivor set.
func (fs *FaultFS) Restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.crashed {
		panic("storage: FaultFS.Restart without a crash")
	}
	fs.crashed = false
	fs.plan = nil
}

// crashLocked applies the crash: computes each file's surviving contents
// per mode, with the in-flight write (ino/p/off) partially applied under
// CrashTornWrite. Survivors become both volatile and synced state so a
// later Restart reboots into them.
func (fs *FaultFS) crashLocked(mode CrashMode, ino *memInode, p []byte, off int64) {
	fs.crashed = true
	fs.gen++
	if mode == CrashTornWrite && ino != nil && len(p) > 0 {
		// The faulting write reaches disk torn: only a prefix lands.
		writeAtInode(ino, p[:(len(p)+1)/2], off)
	}
	for _, f := range fs.files {
		if mode == CrashLoseUnsynced {
			f.data = append([]byte(nil), f.synced...)
		}
		f.synced = append([]byte(nil), f.data...)
	}
}

// faultPoint books one durability-relevant operation and returns the error
// to inject, if any. For a crash at a write, the caller passes the inode
// and payload so CrashTornWrite can tear it.
func (fs *FaultFS) faultPoint(ino *memInode, p []byte, off int64) error {
	if fs.crashed {
		return ErrCrashed
	}
	fs.ops++
	if pl := fs.plan; pl != nil {
		if pl.FailAfter > 0 && fs.ops == pl.FailAfter {
			return ErrInjectedFault
		}
		if pl.CrashAfter > 0 && fs.ops == pl.CrashAfter {
			fs.crashLocked(pl.Mode, ino, p, off)
			return ErrCrashed
		}
	}
	return nil
}

func writeAtInode(ino *memInode, p []byte, off int64) {
	end := off + int64(len(p))
	if int64(len(ino.data)) < end {
		grown := make([]byte, end)
		copy(grown, ino.data)
		ino.data = grown
	}
	copy(ino.data[off:], p)
}

func cleanPath(name string) string { return filepath.Clean(name) }

// Create implements FS: a new empty inode replaces any existing one (the
// entry is immediately durable, the contents are not).
func (fs *FaultFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.faultPoint(nil, nil, 0); err != nil {
		return nil, err
	}
	name = cleanPath(name)
	ino := &memInode{}
	fs.files[name] = ino
	return &fileHandle{fs: fs, ino: ino, gen: fs.gen}, nil
}

// Open implements FS (read-only; shares the inode, so the handle sees
// later writes like a real fd would).
func (fs *FaultFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	ino, ok := fs.files[cleanPath(name)]
	if !ok {
		return nil, fmt.Errorf("storage: open %s: %w", name, errNotExist)
	}
	return &fileHandle{fs: fs, ino: ino, gen: fs.gen}, nil
}

// errNotExist aliases io/fs.ErrNotExist so errors.Is treats FaultFS and
// OSFS missing-file errors identically (os errors already wrap it).
var errNotExist = iofs.ErrNotExist

// IsNotExist reports whether err means a missing file, under both OSFS
// and FaultFS.
func IsNotExist(err error) bool { return errors.Is(err, iofs.ErrNotExist) }

// OpenRW implements FS: open-or-create without truncation.
func (fs *FaultFS) OpenRW(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = cleanPath(name)
	ino, ok := fs.files[name]
	if !ok {
		// Creating counts as a fault point (a directory-entry change);
		// opening an existing file does not.
		if err := fs.faultPoint(nil, nil, 0); err != nil {
			return nil, err
		}
		ino = &memInode{}
		fs.files[name] = ino
	} else if fs.crashed {
		return nil, ErrCrashed
	}
	return &fileHandle{fs: fs, ino: ino, gen: fs.gen}, nil
}

// Rename implements FS: atomic and immediately durable.
func (fs *FaultFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.faultPoint(nil, nil, 0); err != nil {
		return err
	}
	oldname, newname = cleanPath(oldname), cleanPath(newname)
	ino, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("storage: rename %s: %w", oldname, errNotExist)
	}
	delete(fs.files, oldname)
	fs.files[newname] = ino
	return nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.faultPoint(nil, nil, 0); err != nil {
		return err
	}
	name = cleanPath(name)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: remove %s: %w", name, errNotExist)
	}
	delete(fs.files, name)
	return nil
}

// MkdirAll implements FS. Directories carry no data; creation is not a
// fault point (the durable tier always SyncDirs after meaningful entry
// changes).
func (fs *FaultFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	dir = cleanPath(dir)
	for d := dir; ; d = filepath.Dir(d) {
		fs.dirs[d] = true
		if d == filepath.Dir(d) {
			break
		}
	}
	return nil
}

// List implements FS.
func (fs *FaultFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	dir = cleanPath(dir)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS. Directory entries are already durable in this
// model, but the call is still a fault point: a real fsync can fail or be
// the instant of the crash.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.faultPoint(nil, nil, 0)
}

// DumpPaths returns every file path, sorted — a test helper for asserting
// on-disk layout (snapshots present, temp files cleaned up).
func (fs *FaultFS) DumpPaths() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	paths := make([]string, 0, len(fs.files))
	for name := range fs.files {
		paths = append(paths, name)
	}
	sort.Strings(paths)
	return paths
}

func (h *fileHandle) dead() bool { return h.fs.crashed || h.gen != h.fs.gen }

func (h *fileHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.dead() {
		return 0, ErrCrashed
	}
	if off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *fileHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.dead() {
		return 0, ErrCrashed
	}
	if err := h.fs.faultPoint(h.ino, p, off); err != nil {
		return 0, err
	}
	writeAtInode(h.ino, p, off)
	return len(p), nil
}

func (h *fileHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.dead() {
		return ErrCrashed
	}
	if err := h.fs.faultPoint(nil, nil, 0); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("storage: truncate to negative size %d", size)
	}
	if int64(len(h.ino.data)) > size {
		h.ino.data = h.ino.data[:size]
	} else {
		for int64(len(h.ino.data)) < size {
			h.ino.data = append(h.ino.data, 0)
		}
	}
	return nil
}

func (h *fileHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.dead() {
		return ErrCrashed
	}
	if err := h.fs.faultPoint(nil, nil, 0); err != nil {
		return err
	}
	h.ino.synced = append([]byte(nil), h.ino.data...)
	return nil
}

func (h *fileHandle) Close() error {
	// Closing needs no fault point: close loses nothing a crash would not.
	return nil
}

func (h *fileHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.dead() {
		return 0, ErrCrashed
	}
	return int64(len(h.ino.data)), nil
}
