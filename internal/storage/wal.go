package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
)

// Write-ahead log: an append-only sequence of CRC-framed records over an
// FS file. Each record is one atomic unit (the durable tier logs one
// mutation batch per record); a record is on the books only once Append
// AND Sync have both returned, which is why the service fsyncs the WAL
// before installing a mutation and before acknowledging it.
//
//	frame: [4B length LE][4B CRC-32C of payload][payload]
//
// The scan at open is torn-tail tolerant: a crash mid-append leaves a
// truncated final frame (or, on disks that tear sectors, a complete
// frame with a mismatched checksum). Either way the scan stops at the
// last intact record, reports what it dropped, and truncates the file
// there so subsequent appends extend a clean tail.
const (
	walFrameHeader = 8
	// maxWALRecord bounds a single record; anything larger is framing
	// corruption, not data (a mutation batch encodes in kilobytes).
	maxWALRecord = 64 << 20
)

// WAL is an open write-ahead log positioned at its append tail. Appends
// are single-writer; Size is safe to read concurrently (metrics scrape
// it while the writer holds its own lock).
type WAL struct {
	f    File
	path string
	off  atomic.Int64 // append offset == byte length of the valid prefix
}

// WALOpenResult reports what the open-time scan found.
type WALOpenResult struct {
	// Records are the intact records, in append order.
	Records [][]byte
	// CorruptRecords counts complete-looking frames whose checksum (or
	// framing) failed — the scan stops at the first one.
	CorruptRecords int
	// TornTail reports an incomplete final frame: the expected shape of a
	// crash mid-append, distinct from checksum corruption.
	TornTail bool
	// DroppedBytes is how much the file was truncated by (torn tail and
	// anything after a corrupt frame).
	DroppedBytes int64
}

// OpenWAL opens (creating if absent) the log at path, scans it, truncates
// the invalid tail, and returns the log positioned for appends plus the
// scan's findings.
func OpenWAL(fs FS, path string) (*WAL, *WALOpenResult, error) {
	f, err := fs.OpenRW(path)
	if err != nil {
		return nil, nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	res, off, err := scanWALFrames(f, size)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: %s: scanning WAL: %w", path, err)
	}
	if off < size {
		// Cut the invalid tail so the next append extends a clean log; a
		// failure here is a real I/O error, not tolerable corruption.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: %s: truncating WAL tail: %w", path, err)
		}
	}
	w := &WAL{f: f, path: path}
	w.off.Store(off)
	return w, res, nil
}

// scanWALFrames walks the frames from offset 0, collecting intact records
// and classifying whatever stops the scan (torn tail vs checksum/framing
// corruption). It returns the scan findings and the end of the valid
// prefix. Read errors are real I/O failures, not tolerable corruption.
func scanWALFrames(f File, size int64) (*WALOpenResult, int64, error) {
	res := &WALOpenResult{}
	var off int64
	for off < size {
		var hdr [walFrameHeader]byte
		if size-off < walFrameHeader {
			res.TornTail = true
			break
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil && err != io.EOF {
			return nil, 0, err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if n == 0 || n > maxWALRecord {
			// Length 0 (stale zero-fill) or an implausible size: framing
			// corruption, not a record.
			res.CorruptRecords++
			break
		}
		if size-off-walFrameHeader < n {
			res.TornTail = true
			break
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+walFrameHeader); err != nil && err != io.EOF {
			return nil, 0, err
		}
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
			res.CorruptRecords++
			break
		}
		res.Records = append(res.Records, payload)
		off += walFrameHeader + n
	}
	res.DroppedBytes = size - off
	return res, off, nil
}

// Append writes one record frame at the tail. It does NOT sync; callers
// group appends and call Sync at their commit point (the service syncs
// once per mutation batch).
func (w *WAL) Append(rec []byte) error {
	if len(rec) == 0 || len(rec) > maxWALRecord {
		return fmt.Errorf("storage: WAL record of %d bytes (want 1..%d)", len(rec), maxWALRecord)
	}
	frame := make([]byte, walFrameHeader+len(rec))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, crcTable))
	copy(frame[walFrameHeader:], rec)
	off := w.off.Load()
	if _, err := w.f.WriteAt(frame, off); err != nil {
		// The frame may be partially on disk — exactly the torn tail the
		// next open's scan drops. The append offset stays put, so a
		// successful retry overwrites the torn frame.
		return err
	}
	w.off.Store(off + int64(len(frame)))
	return nil
}

// Sync makes every appended record durable. A record is committed only
// after Sync returns.
func (w *WAL) Sync() error { return w.f.Sync() }

// Trim empties the log after a checkpoint has folded its records into
// durable snapshots, then syncs the truncation. Safe ordering is the
// caller's job: Trim only after the checkpoint manifest is durable. (If
// the crash comes between the two, replay sees stale records and skips
// them by version — idempotent recovery.)
func (w *WAL) Trim() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off.Store(0)
	return w.f.Sync()
}

// Size returns the byte length of the valid log (header-inclusive).
func (w *WAL) Size() int64 { return w.off.Load() }

// Close closes the underlying file without syncing.
func (w *WAL) Close() error { return w.f.Close() }

// ScanWAL reads the log at path read-only and reports the same findings
// as OpenWAL without truncating or holding the file open — fsck's view.
func ScanWAL(fs FS, path string) (*WALOpenResult, error) {
	f, err := fs.Open(path)
	if err != nil {
		if IsNotExist(err) {
			return &WALOpenResult{}, nil
		}
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	res, _, err := scanWALFrames(f, size)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: scanning WAL: %w", path, err)
	}
	return res, nil
}
