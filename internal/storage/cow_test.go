package storage

import (
	"bytes"
	"testing"
)

// fillPage builds page-sized content whose every byte is b.
func fillPage(size int, b byte) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = b
	}
	return data
}

func TestDiskCloneIsolation(t *testing.T) {
	d := NewDisk(32)
	for i := 0; i < 4; i++ {
		id := d.Alloc()
		d.write(id, fillPage(32, byte('a'+i)))
	}

	c := d.Clone()
	if c.Origin() != d {
		t.Fatal("clone origin not set")
	}
	if c.NumPages() != d.NumPages() {
		t.Fatalf("clone has %d pages, want %d", c.NumPages(), d.NumPages())
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(c.read(PageID(i)), d.read(PageID(i))) {
			t.Fatalf("page %d differs after clone", i)
		}
	}

	// Retain the original's raw slices: a COW write on the clone must not
	// touch them.
	before := make([][]byte, 4)
	for i := range before {
		before[i] = d.read(PageID(i)) // shared slice, observed live
	}

	c.write(0, fillPage(32, 'X'))
	nid := c.Alloc()
	c.write(nid, fillPage(32, 'Y'))

	for i := 0; i < 4; i++ {
		want := fillPage(32, byte('a'+i))
		if !bytes.Equal(before[i], want) {
			t.Fatalf("original page %d corrupted by clone write: %q", i, before[i][:4])
		}
		if !bytes.Equal(d.read(PageID(i)), want) {
			t.Fatalf("original disk read of page %d changed", i)
		}
	}
	if got := c.read(0); got[0] != 'X' {
		t.Fatalf("clone page 0 = %q, want X", got[:1])
	}
	if d.NumPages() != 4 {
		t.Fatalf("clone Alloc leaked into original: %d pages", d.NumPages())
	}

	// Writes on the source after cloning must not leak into the clone
	// either (both sides are COW-protected).
	d.write(1, fillPage(32, 'Z'))
	if got := c.read(1); got[0] != 'b' {
		t.Fatalf("source write leaked into clone: %q", got[:1])
	}
	if got := d.read(1); got[0] != 'Z' {
		t.Fatalf("source write lost: %q", got[:1])
	}
}

func TestDiskCloneChain(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.write(id, fillPage(16, '1'))

	c1 := d.Clone()
	c1.write(id, fillPage(16, '2'))
	// Pages allocated after a clone are private until the next Clone marks
	// them shared.
	extra := c1.Alloc()
	c1.write(extra, fillPage(16, 'e'))

	c2 := c1.Clone()
	c2.write(id, fillPage(16, '3'))
	c2.write(extra, fillPage(16, 'f'))

	if got := d.read(id)[0]; got != '1' {
		t.Fatalf("root disk sees %q", got)
	}
	if got := c1.read(id)[0]; got != '2' {
		t.Fatalf("first clone sees %q", got)
	}
	if got := c1.read(extra)[0]; got != 'e' {
		t.Fatalf("first clone extra page sees %q", got)
	}
	if got := c2.read(id)[0]; got != '3' {
		t.Fatalf("second clone sees %q", got)
	}
	if got := c2.read(extra)[0]; got != 'f' {
		t.Fatalf("second clone extra page sees %q", got)
	}
	if c2.Origin() != c1 || c1.Origin() != d || d.Origin() != nil {
		t.Fatal("clone lineage broken")
	}
}

// TestDiskCloneThroughBuffer exercises the COW contract through the Buffer
// layer the way the service uses it: an old reader's buffer keeps serving
// the old bytes while a writer mutates the clone through its own buffer.
func TestDiskCloneThroughBuffer(t *testing.T) {
	d := NewDisk(32)
	base := NewBuffer(d, 8)
	id := base.Alloc()
	base.Write(id, fillPage(32, 'o'))

	reader := base.Fork(8)
	if got := reader.Read(id)[0]; got != 'o' {
		t.Fatalf("reader sees %q before clone", got)
	}

	writer := NewBuffer(d.Clone(), 8)
	writer.Write(id, fillPage(32, 'n'))

	if got := reader.Read(id)[0]; got != 'o' {
		t.Fatalf("reader sees %q after clone write (cached)", got)
	}
	reader.DropAll()
	if got := reader.Read(id)[0]; got != 'o' {
		t.Fatalf("reader sees %q after clone write (cold)", got)
	}
	if got := writer.Read(id)[0]; got != 'n' {
		t.Fatalf("writer sees %q", got)
	}
}
