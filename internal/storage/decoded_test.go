package storage

import "testing"

// newTestBuf returns a buffer over a disk with n pre-written pages.
func newTestBuf(t *testing.T, capacity, pages int) (*Buffer, []PageID) {
	t.Helper()
	d := NewDisk(64)
	b := NewBuffer(d, capacity)
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = b.Alloc()
		data := make([]byte, 64)
		data[0] = byte(i + 1)
		b.Write(ids[i], data)
	}
	b.DropAll()
	b.ResetStats()
	return b, ids
}

func TestDecodedSlotRoundTrip(t *testing.T) {
	b, ids := newTestBuf(t, 4, 2)
	id := ids[0]

	if _, dec, resident := b.ReadDecoded(id); dec != nil || resident {
		t.Fatalf("cold read: decoded=%v resident=%v, want nil/false", dec, resident)
	}
	b.SetDecoded(id, "node-A")
	data, dec, resident := b.ReadDecoded(id)
	if dec != "node-A" || !resident {
		t.Fatalf("warm read: decoded=%v resident=%v", dec, resident)
	}
	if data[0] != 1 {
		t.Fatalf("warm read returned wrong page bytes")
	}
	s := b.Stats()
	if s.DecodeHits != 1 || s.DecodeMisses != 1 {
		t.Fatalf("decode counters = %d/%d, want 1 hit / 1 miss", s.DecodeHits, s.DecodeMisses)
	}
	if s.LogicalReads != 2 || s.PageReads != 1 {
		t.Fatalf("I/O counters perturbed: %+v", s)
	}
}

func TestSetDecodedNonResidentNoop(t *testing.T) {
	b, ids := newTestBuf(t, 0, 1) // capacity 0: nothing is ever resident
	b.SetDecoded(ids[0], "node")
	if _, dec, resident := b.ReadDecoded(ids[0]); dec != nil || resident {
		t.Fatalf("capacity-0 buffer returned a decoded value (%v, %v)", dec, resident)
	}
}

func TestWriteInvalidatesDecodedAndBumpsGeneration(t *testing.T) {
	b, ids := newTestBuf(t, 4, 1)
	id := ids[0]
	b.Read(id)
	b.SetDecoded(id, "stale")
	gen := b.Generation()

	data := make([]byte, 64)
	data[0] = 99
	b.Write(id, data)
	if b.Generation() != gen+1 {
		t.Fatalf("generation %d after write, want %d", b.Generation(), gen+1)
	}
	got, dec, _ := b.ReadDecoded(id)
	if dec != nil {
		t.Fatalf("decoded slot survived a Write: %v", dec)
	}
	if got[0] != 99 {
		t.Fatalf("read stale bytes after write")
	}
}

func TestEvictionDropsDecodedAndFiresHook(t *testing.T) {
	b, ids := newTestBuf(t, 2, 3)
	var evicted []PageID
	var decodedSeen []any
	b.SetOnEvict(func(id PageID, dec any) {
		evicted = append(evicted, id)
		decodedSeen = append(decodedSeen, dec)
	})

	b.Read(ids[0])
	b.SetDecoded(ids[0], "A")
	b.Read(ids[1])
	b.Read(ids[2]) // capacity 2: evicts ids[0], its decoded value with it
	if len(evicted) != 1 || evicted[0] != ids[0] || decodedSeen[0] != "A" {
		t.Fatalf("eviction hook saw %v/%v, want [%d]/[A]", evicted, decodedSeen, ids[0])
	}
	if _, ok := b.Decoded(ids[0]); ok {
		t.Fatal("evicted page still reports a decoded value")
	}
	// Re-reading the evicted page must re-install with an empty slot.
	if _, dec, resident := b.ReadDecoded(ids[0]); dec != nil || resident {
		t.Fatalf("re-read after eviction: decoded=%v resident=%v", dec, resident)
	}

	// DropAll fires the hook for everything still resident.
	evicted = evicted[:0]
	b.DropAll()
	if len(evicted) != 2 {
		t.Fatalf("DropAll evicted %d pages, want 2", len(evicted))
	}
}

func TestSetCapacityShrinkDropsDecoded(t *testing.T) {
	b, ids := newTestBuf(t, 4, 3)
	for _, id := range ids {
		b.Read(id)
		b.SetDecoded(id, int(id))
	}
	b.SetCapacity(1)
	survivors := 0
	for _, id := range ids {
		if _, ok := b.Decoded(id); ok {
			survivors++
		}
	}
	if survivors != 1 {
		t.Fatalf("%d decoded slots survived a shrink to 1 page, want 1", survivors)
	}
}

func TestDecodeCachingToggle(t *testing.T) {
	b, ids := newTestBuf(t, 4, 1)
	id := ids[0]
	b.Read(id)
	b.SetDecoded(id, "X")
	b.SetDecodeCaching(false)
	if _, dec, _ := b.ReadDecoded(id); dec != nil {
		t.Fatalf("decode caching off still served %v", dec)
	}
	b.SetDecoded(id, "Y")
	b.SetDecodeCaching(true)
	if _, dec, _ := b.ReadDecoded(id); dec != nil {
		t.Fatalf("disabled SetDecoded stored %v", dec)
	}
}

func TestDecodeCacheDefaultInherited(t *testing.T) {
	prev := SetDecodeCacheDefault(false)
	defer SetDecodeCacheDefault(prev)
	d := NewDisk(64)
	b := NewBuffer(d, 4)
	if b.DecodeCaching() {
		t.Fatal("new buffer ignored the package default")
	}
	if f := b.Fork(4); f.DecodeCaching() {
		t.Fatal("fork did not inherit the decode-caching switch")
	}
	SetDecodeCacheDefault(true)
	if !NewBuffer(d, 4).DecodeCaching() {
		t.Fatal("restored default not picked up")
	}
}

// TestLRUFreeListRecycles pins the allocation-free page churn: with the
// intrusive free list, steady-state install/evict cycles reuse entries.
func TestLRUFreeListRecycles(t *testing.T) {
	b, ids := newTestBuf(t, 2, 3)
	for i := 0; i < 3; i++ { // warm the free list past its high-water mark
		for _, id := range ids {
			b.Read(id)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, id := range ids {
			b.Read(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state page churn allocates %.2f objects per cycle, want 0", allocs)
	}
}
