package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultFSCrashLosesUnsynced(t *testing.T) {
	fs := NewFaultFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("synced"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("VOLATILE"), 0); err != nil {
		t.Fatal(err)
	}

	fs.Crash(CrashLoseUnsynced)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed fs: %v, want ErrCrashed", err)
	}
	fs.Restart()

	// The pre-crash handle stays dead even after restart.
	if _, err := f.Size(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle after restart: %v, want ErrCrashed", err)
	}
	got, err := ReadFileAll(fs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Fatalf("survivor = %q, want the synced image", got)
	}
}

func TestFaultFSCrashKeepsUnsynced(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.Create("a")
	if _, err := f.WriteAt([]byte("unsynced"), 0); err != nil {
		t.Fatal(err)
	}
	fs.Crash(CrashKeepUnsynced)
	fs.Restart()
	got, err := ReadFileAll(fs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "unsynced" {
		t.Fatalf("survivor = %q, want unsynced data kept", got)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.Create("a")
	// Crash AT the next write (op 2: Create was op 1): it must land torn.
	fs.SetPlan(&FaultPlan{CrashAfter: 2, Mode: CrashTornWrite})
	if _, err := f.WriteAt([]byte("0123456789"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("faulting write: %v, want ErrCrashed", err)
	}
	fs.Restart()
	got, err := ReadFileAll(fs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn write landed %q, want the 5-byte prefix", got)
	}
}

func TestFaultFSTransientFailure(t *testing.T) {
	fs := NewFaultFS()
	f, _ := fs.Create("a")
	fs.SetPlan(&FaultPlan{FailAfter: 2})
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("injected failure: %v, want ErrInjectedFault", err)
	}
	// Transient: the retry succeeds and nothing was lost.
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	if fs.Crashed() {
		t.Fatalf("transient fault crashed the filesystem")
	}
}

func TestFaultFSRenameAtomicDurable(t *testing.T) {
	fs := NewFaultFS()
	if err := WriteFileAtomic(fs, "cfg", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(fs, "cfg", []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Renames are durable without any sync: a straight crash keeps "new".
	fs.Crash(CrashLoseUnsynced)
	fs.Restart()
	got, err := ReadFileAll(fs, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("post-crash contents = %q, want %q", got, "new")
	}
}

// TestWriteFileAtomicCrashMatrix is the core atomicity property: crash at
// EVERY fault point of an atomic replace, under every crash mode, and the
// path must afterwards hold either the complete old or the complete new
// contents — never a mixture, never the temp file as the live name.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	oldData := bytes.Repeat([]byte("old!"), 64)
	newData := bytes.Repeat([]byte("neww"), 80)

	// Dry run to count fault points of the replace.
	dry := NewFaultFS()
	if err := WriteFileAtomic(dry, "cfg", oldData); err != nil {
		t.Fatal(err)
	}
	base := dry.Ops()
	if err := WriteFileAtomic(dry, "cfg", newData); err != nil {
		t.Fatal(err)
	}
	steps := dry.Ops() - base
	if steps < 4 {
		t.Fatalf("atomic replace has %d fault points, expected at least create/write/sync/rename", steps)
	}

	for _, mode := range []CrashMode{CrashLoseUnsynced, CrashKeepUnsynced, CrashTornWrite} {
		for k := int64(1); k <= steps; k++ {
			fs := NewFaultFS()
			if err := WriteFileAtomic(fs, "cfg", oldData); err != nil {
				t.Fatal(err)
			}
			fs.SetPlan(&FaultPlan{CrashAfter: fs.Ops() + k, Mode: mode})
			err := WriteFileAtomic(fs, "cfg", newData)
			if k < steps && !errors.Is(err, ErrCrashed) {
				t.Fatalf("mode=%v k=%d: err = %v, want ErrCrashed", mode, k, err)
			}
			if !fs.Crashed() {
				// Crash scheduled at the final fault point may land after the
				// replace completed its durability work; treat as done.
				continue
			}
			fs.Restart()
			got, rerr := ReadFileAll(fs, "cfg")
			if rerr != nil {
				t.Fatalf("mode=%v k=%d: cfg unreadable after crash: %v", mode, k, rerr)
			}
			if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
				t.Fatalf("mode=%v k=%d: cfg is neither old nor new (%d bytes)", mode, k, len(got))
			}
		}
	}
}

// TestWALCrashMatrix drives the WAL's own commit protocol through every
// crash position: records synced before the crash must survive; the log
// must always reopen cleanly (torn tails dropped, never an error).
func TestWALCrashMatrix(t *testing.T) {
	recs := [][]byte{
		bytes.Repeat([]byte("a"), 100),
		bytes.Repeat([]byte("b"), 500),
		bytes.Repeat([]byte("c"), 33),
	}
	appendAll := func(fs *FaultFS) (acked int, _ error) {
		w, _, err := OpenWAL(fs, "wal")
		if err != nil {
			return 0, err
		}
		defer w.Close()
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				return acked, err
			}
			if err := w.Sync(); err != nil {
				return acked, err
			}
			acked++
		}
		return acked, nil
	}

	dry := NewFaultFS()
	if _, err := appendAll(dry); err != nil {
		t.Fatal(err)
	}
	steps := dry.Ops()

	for _, mode := range []CrashMode{CrashLoseUnsynced, CrashKeepUnsynced, CrashTornWrite} {
		for k := int64(1); k <= steps; k++ {
			fs := NewFaultFS()
			fs.SetPlan(&FaultPlan{CrashAfter: k, Mode: mode})
			acked, err := appendAll(fs)
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("mode=%v k=%d: err = %v, want ErrCrashed", mode, k, err)
			}
			fs.Restart()
			_, res, oerr := OpenWAL(fs, "wal")
			if oerr != nil {
				t.Fatalf("mode=%v k=%d: reopen after crash: %v", mode, k, oerr)
			}
			if len(res.Records) < acked {
				t.Fatalf("mode=%v k=%d: recovered %d records, %d were acknowledged",
					mode, k, len(res.Records), acked)
			}
			for i := 0; i < len(res.Records) && i < len(recs); i++ {
				if !bytes.Equal(res.Records[i], recs[i]) {
					t.Fatalf("mode=%v k=%d: record %d corrupted after recovery", mode, k, i)
				}
			}
			if res.CorruptRecords > 0 && mode != CrashTornWrite {
				t.Fatalf("mode=%v k=%d: checksum corruption without torn writes", mode, k)
			}
		}
	}
}

func TestFaultFSListAndRemove(t *testing.T) {
	fs := NewFaultFS()
	if err := fs.MkdirAll("dir/sub"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dir/b", "dir/a", "dir/sub/c"} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	names, err := fs.List("dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List(dir) = %v, want [a b]", names)
	}
	if err := fs.Remove("dir/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("dir/a"); !IsNotExist(err) {
		t.Fatalf("double remove: %v, want not-exist", err)
	}
	if _, err := fs.Open("missing"); !IsNotExist(err) {
		t.Fatalf("open missing: %v, want not-exist", err)
	}
}
